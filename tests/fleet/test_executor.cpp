// Executor: completeness, reuse, imbalance (stealing), exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "fleet/executor.hpp"

namespace han::fleet {
namespace {

TEST(Executor, RunsEveryIndexExactlyOnce) {
  Executor ex(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ex.parallel_for(kN, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Executor, ZeroTasksIsANoOp) {
  Executor ex(2);
  ex.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(Executor, FewerTasksThanThreads) {
  Executor ex(8);
  std::atomic<int> ran{0};
  ex.parallel_for(3, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 3);
}

TEST(Executor, SingleThreadExecutesAll) {
  Executor ex(1);
  EXPECT_EQ(ex.thread_count(), 1u);
  std::atomic<int> ran{0};
  ex.parallel_for(64, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 64);
}

TEST(Executor, PoolIsReusableAcrossCalls) {
  Executor ex(3);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> ran{0};
    ex.parallel_for(17, [&ran](std::size_t) { ++ran; });
    ASSERT_EQ(ran.load(), 17) << "round " << round;
  }
}

TEST(Executor, UnbalancedTasksAllComplete) {
  // One task is 100x the others; stealing must drain the rest anyway.
  Executor ex(4);
  std::atomic<int> ran{0};
  ex.parallel_for(40, [&ran](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(i == 0 ? 50 : 1));
    ++ran;
  });
  EXPECT_EQ(ran.load(), 40);
}

TEST(Executor, FirstExceptionPropagates) {
  Executor ex(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ex.parallel_for(32,
                      [&ran](std::size_t i) {
                        ++ran;
                        if (i == 7) throw std::runtime_error("task 7 failed");
                      }),
      std::runtime_error);
  // Remaining tasks still execute (the pool is not poisoned).
  EXPECT_EQ(ran.load(), 32);
  ran = 0;
  ex.parallel_for(8, [&ran](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(Executor, DefaultThreadCountIsPositive) {
  Executor ex;
  EXPECT_GE(ex.thread_count(), 1u);
}

// --- parallel_for_ranges degenerate inputs (regression: these used to
// lean on caller discipline via suggested_grain).

TEST(Executor, RangesZeroElementsNeverCallsBody) {
  Executor ex(3);
  ex.parallel_for_ranges(0, 16, [](std::size_t, std::size_t) {
    FAIL() << "n == 0 must not invoke the body";
  });
}

TEST(Executor, RangesZeroGrainIsClampedToOne) {
  Executor ex(3);
  constexpr std::size_t kN = 37;
  std::vector<std::atomic<int>> hits(kN);
  ex.parallel_for_ranges(kN, 0,
                         [&hits](std::size_t begin, std::size_t end) {
                           ASSERT_LT(begin, end);
                           for (std::size_t i = begin; i < end; ++i) {
                             ++hits[i];
                           }
                         });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Executor, RangesGrainLargerThanNIsOneExactBlock) {
  Executor ex(3);
  std::atomic<int> calls{0};
  std::atomic<std::size_t> got_begin{99};
  std::atomic<std::size_t> got_end{0};
  ex.parallel_for_ranges(5, 1000,
                         [&](std::size_t begin, std::size_t end) {
                           ++calls;
                           got_begin = begin;
                           got_end = end;
                         });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(got_begin.load(), 0u);
  EXPECT_EQ(got_end.load(), 5u);  // never past n
}

// --- task-graph API basics (the per-shard join machinery the engine's
// barrier schedulers are built on; stress lives in test_executor_stress).

TEST(Executor, GraphRunsNodesInDependencyOrder) {
  Executor ex(4);
  std::atomic<int> stage{0};
  Executor::TaskGraph graph;
  const auto a = graph.add([&stage]() {
    int expected = 0;
    EXPECT_TRUE(stage.compare_exchange_strong(expected, 1));
  });
  const auto b = graph.add_join({a}, [&stage]() {
    int expected = 1;
    EXPECT_TRUE(stage.compare_exchange_strong(expected, 2));
  });
  auto run = ex.submit_graph(std::move(graph));
  run.wait(b);
  EXPECT_TRUE(run.done(a));
  EXPECT_TRUE(run.done(b));
  run.wait_all();
  EXPECT_EQ(stage.load(), 2);
}

TEST(Executor, PureJoinRetiresWhenDependenciesDo) {
  Executor ex(2);
  std::atomic<int> ran{0};
  Executor::TaskGraph graph;
  std::vector<Executor::TaskId> deps;
  for (std::size_t i = 0; i < 8; ++i) {
    deps.push_back(graph.add([&ran]() { ++ran; }, /*affinity=*/i));
  }
  const auto join = graph.add_join(deps);  // bodiless
  auto run = ex.submit_graph(std::move(graph));
  run.wait(join);
  EXPECT_EQ(ran.load(), 8);
  run.wait_all();
}

TEST(Executor, EmptyGraphCompletesImmediately) {
  Executor ex(2);
  auto run = ex.submit_graph(Executor::TaskGraph{});
  run.wait_all();  // must not hang
}

TEST(Executor, ForwardDependencyIsRejected) {
  Executor::TaskGraph graph;
  const auto a = graph.add([]() {});
  EXPECT_THROW(graph.add_join({a + 1}, []() {}), std::invalid_argument);
}

}  // namespace
}  // namespace han::fleet
