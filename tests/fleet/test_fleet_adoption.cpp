// mixed_adoption property: coordinated homes lower the coincident peak.
//
// The same fleet (same seed => same homes, same workload, same base
// load; the adoption coin is the last draw on its stream, so flipping
// the fraction changes ONLY which scheduler each home runs) is run at
// adoption 0, 0.5 and 1. Full coordination must beat no coordination on
// the feeder's coincident peak, and partial adoption must not be worse
// than none.
#include <gtest/gtest.h>

#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han::fleet {
namespace {

/// Surge-heavy fleet: every premise gets whole-home clustered bursts,
/// the regime where uncoordinated duty cycles stack the worst.
FleetConfig surge_fleet(double adoption, std::uint64_t seed) {
  FleetConfig cfg;
  cfg.premise_count = 8;
  cfg.seed = seed;
  cfg.horizon = sim::hours(3);
  cfg.round_period = sim::seconds(30);
  cfg.profile.min_devices = 4;
  cfg.profile.max_devices = 8;
  cfg.profile.base_rate_per_device_hour = 0.2;
  cfg.profile.surge = true;
  cfg.profile.surge_start = sim::minutes(60);
  cfg.profile.surge_end = sim::minutes(150);
  cfg.profile.surge_clusters_per_hour = 4.0;
  cfg.profile.surge_cluster_size = 8;  // clamped to the home size
  cfg.profile.coordination_adoption = adoption;
  return cfg;
}

TEST(MixedAdoption, AdoptionOnlyFlipsSchedulers) {
  const FleetEngine none(surge_fleet(0.0, 21));
  const FleetEngine full(surge_fleet(1.0, 21));
  for (std::size_t i = 0; i < 8; ++i) {
    const PremiseSpec a = none.make_spec(i);
    const PremiseSpec b = full.make_spec(i);
    EXPECT_EQ(a.experiment.han.device_count, b.experiment.han.device_count);
    EXPECT_EQ(a.experiment.han.seed, b.experiment.han.seed);
    EXPECT_DOUBLE_EQ(a.base_kw, b.base_kw);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.experiment.han.scheduler,
              core::SchedulerKind::kUncoordinated);
    EXPECT_EQ(b.experiment.han.scheduler, core::SchedulerKind::kCoordinated);
  }
}

TEST(MixedAdoption, CoordinationLowersCoincidentPeak) {
  const FleetResult none = FleetEngine(surge_fleet(0.0, 21)).run(2);
  const FleetResult full = FleetEngine(surge_fleet(1.0, 21)).run(2);
  ASSERT_EQ(none.coordinated_premises, 0u);
  ASSERT_EQ(full.coordinated_premises, 8u);

  EXPECT_LT(full.feeder.coincident_peak_kw, none.feeder.coincident_peak_kw);
  // Staggering inside each home also smooths the feeder sum.
  EXPECT_LE(full.feeder.peak_to_average, none.feeder.peak_to_average);
  // Both serve the same demand.
  EXPECT_EQ(full.total_requests, none.total_requests);
}

TEST(MixedAdoption, PartialAdoptionIsNotWorseThanNone) {
  const FleetResult none = FleetEngine(surge_fleet(0.0, 21)).run(2);
  const FleetResult mixed = FleetEngine(surge_fleet(0.5, 21)).run(2);
  EXPECT_GT(mixed.coordinated_premises, 0u);
  EXPECT_LT(mixed.coordinated_premises, 8u);
  EXPECT_LE(mixed.feeder.coincident_peak_kw,
            none.feeder.coincident_peak_kw);
}

}  // namespace
}  // namespace han::fleet
