// Closed-loop grid runs: open-loop equivalence, DR efficacy on
// dr_heat_wave, and byte-identical signal/compliance logs at any
// executor width.
#include <gtest/gtest.h>

#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han::fleet {
namespace {

/// dr_heat_wave shrunk to test size: 6 premises, 8 h, 30 s CP rounds.
FleetConfig tiny_dr_heat_wave(std::uint64_t seed = 1) {
  FleetConfig cfg = make_scenario(ScenarioKind::kDrHeatWave, 6, seed);
  cfg.horizon = sim::hours(8);
  cfg.round_period = sim::seconds(30);
  return cfg;
}

void expect_identical_fleet(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.premises.size(), b.premises.size());
  for (std::size_t i = 0; i < a.premises.size(); ++i) {
    EXPECT_EQ(a.premises[i].scheduler, b.premises[i].scheduler) << i;
    EXPECT_EQ(a.premises[i].requests, b.premises[i].requests) << i;
    EXPECT_EQ(a.premises[i].load.values(), b.premises[i].load.values()) << i;
  }
  EXPECT_EQ(a.feeder_load.values(), b.feeder_load.values());
  EXPECT_DOUBLE_EQ(a.feeder.overload_minutes, b.feeder.overload_minutes);
}

TEST(FleetGrid, DisabledGridReproducesPlainRun) {
  // The lockstep loop with the controller muted must be byte-equal to
  // the one-shot run: same premises, same series, same feeder metrics.
  FleetConfig cfg = tiny_dr_heat_wave();
  cfg.grid.enabled = false;
  const FleetEngine engine(cfg);
  const FleetResult plain = engine.run(2);
  const GridFleetResult looped = engine.run_grid(2);
  expect_identical_fleet(plain, looped.fleet);
  EXPECT_TRUE(looped.signals.empty());
  EXPECT_TRUE(looped.deliveries.empty());
  EXPECT_EQ(looped.dr.shed_signals, 0u);
  // The passive feeder model still measured the transformer.
  EXPECT_GT(looped.peak_temperature_pu, 0.0);
}

TEST(FleetGrid, DrShedsStrictlyReduceOverloadMinutes) {
  // Identical seed, DR on vs off: the heat wave must overload the
  // transformer open-loop, and closing the loop must strictly reduce
  // the overload-minute count (the PR's acceptance criterion).
  FleetConfig cfg = tiny_dr_heat_wave();
  FleetConfig no_dr = cfg;
  no_dr.grid.enabled = false;

  const GridFleetResult with_dr = FleetEngine(cfg).run_grid(2);
  const GridFleetResult without = FleetEngine(no_dr).run_grid(2);

  ASSERT_GT(without.fleet.feeder.overload_minutes, 0.0)
      << "scenario must stress the transformer for DR to matter";
  EXPECT_GT(with_dr.dr.shed_signals, 0u);
  EXPECT_LT(with_dr.fleet.feeder.overload_minutes,
            without.fleet.feeder.overload_minutes);
  EXPECT_LE(with_dr.overload_minutes, without.overload_minutes);
  // Premise-side evidence the loop actually closed: signals were
  // applied inside premises, not just logged at the bus.
  std::uint64_t applied = 0;
  for (const PremiseResult& p : with_dr.fleet.premises) {
    applied += p.network.grid_signals_applied;
  }
  EXPECT_GT(applied, 0u);
}

TEST(FleetGrid, SignalLogByteIdenticalAcrossThreadCounts) {
  const FleetEngine engine(tiny_dr_heat_wave());
  const GridFleetResult one = engine.run_grid(1);
  const GridFleetResult four = engine.run_grid(4);
  const GridFleetResult seven = engine.run_grid(7);

  ASSERT_FALSE(one.signal_log_csv.empty());
  EXPECT_EQ(one.signal_log_csv, four.signal_log_csv);
  EXPECT_EQ(one.signal_log_csv, seven.signal_log_csv);
  EXPECT_EQ(one.signals, four.signals);
  EXPECT_EQ(one.deliveries, four.deliveries);
  expect_identical_fleet(one.fleet, four.fleet);
  expect_identical_fleet(one.fleet, seven.fleet);
  EXPECT_DOUBLE_EQ(one.overload_minutes, four.overload_minutes);
  EXPECT_DOUBLE_EQ(one.peak_temperature_pu, four.peak_temperature_pu);
}

TEST(FleetGrid, ZeroOptInBehavesLikeOpenLoop) {
  // Signals may be emitted and logged, but nobody acts: the premise
  // series must match the DR-off run exactly.
  FleetConfig deaf = tiny_dr_heat_wave();
  deaf.grid.bus.opt_in = 0.0;
  FleetConfig off = tiny_dr_heat_wave();
  off.grid.enabled = false;

  const GridFleetResult a = FleetEngine(deaf).run_grid(2);
  const GridFleetResult b = FleetEngine(off).run_grid(2);
  expect_identical_fleet(a.fleet, b.fleet);
  EXPECT_EQ(a.complying_premises, 0u);
  for (const grid::Delivery& d : a.deliveries) {
    EXPECT_FALSE(d.complied);
  }
}

TEST(FleetGrid, TariffReachesEveryPremiseRegardlessOfEnrollment) {
  // Time-of-use tiers apply to all customers; DR opt-in only gates
  // sheds. With zero enrollment the tariff must still be applied
  // premise-side (tariff_evening starts inside the off-peak window, so
  // the initial tier is signalled at t=0).
  FleetConfig cfg = make_scenario(ScenarioKind::kTariffEvening, 4, 1);
  cfg.horizon = sim::hours(2);
  cfg.round_period = sim::seconds(30);
  cfg.grid.bus.opt_in = 0.0;
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  ASSERT_GT(r.dr.tariff_signals, 0u);
  for (const PremiseResult& p : r.fleet.premises) {
    EXPECT_GT(p.network.grid_signals_applied, 0u) << p.index;
  }
}

TEST(FleetGrid, GridScenariosRegisteredAndConfigured) {
  const FleetConfig heat = make_scenario(ScenarioKind::kDrHeatWave, 10);
  EXPECT_TRUE(heat.grid.enabled);
  EXPECT_TRUE(heat.grid.dr.shed_enabled);

  const FleetConfig tariff =
      make_scenario(ScenarioKind::kTariffEvening, 10);
  EXPECT_TRUE(tariff.grid.enabled);
  EXPECT_EQ(tariff.grid.dr.tariff_windows.size(), 2u);

  const FleetConfig rolling =
      make_scenario(ScenarioKind::kRollingShed, 10);
  EXPECT_TRUE(rolling.grid.enabled);
  // Undersized on purpose: tighter than the plain heat wave.
  const FleetConfig plain = make_scenario(ScenarioKind::kHeatWave, 10);
  EXPECT_LT(rolling.transformer_capacity_kw,
            plain.transformer_capacity_kw);
}

TEST(FleetGrid, BadControlIntervalThrows) {
  FleetConfig cfg = tiny_dr_heat_wave();
  cfg.grid.control_interval = sim::Duration::zero();
  EXPECT_THROW(FleetEngine{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace han::fleet
