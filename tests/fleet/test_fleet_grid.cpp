// Closed-loop grid runs: open-loop equivalence, DR efficacy on
// dr_heat_wave, and byte-identical signal/compliance logs at any
// executor width.
#include <gtest/gtest.h>

#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han::fleet {
namespace {

/// dr_heat_wave shrunk to test size: 6 premises, 8 h, 30 s CP rounds.
FleetConfig tiny_dr_heat_wave(std::uint64_t seed = 1) {
  FleetConfig cfg = make_scenario(ScenarioKind::kDrHeatWave, 6, seed);
  cfg.horizon = sim::hours(8);
  cfg.round_period = sim::seconds(30);
  return cfg;
}

/// multi_feeder shrunk to test size: 10 premises over 3 skewed feeders.
FleetConfig tiny_multi_feeder(std::uint64_t seed = 1) {
  FleetConfig cfg = make_scenario(ScenarioKind::kMultiFeeder, 10, seed);
  cfg.horizon = sim::hours(8);
  cfg.round_period = sim::seconds(30);
  cfg.feeder_count = 3;
  return cfg;
}

void expect_identical_fleet(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.premises.size(), b.premises.size());
  for (std::size_t i = 0; i < a.premises.size(); ++i) {
    EXPECT_EQ(a.premises[i].scheduler, b.premises[i].scheduler) << i;
    EXPECT_EQ(a.premises[i].requests, b.premises[i].requests) << i;
    EXPECT_EQ(a.premises[i].load.values(), b.premises[i].load.values()) << i;
  }
  EXPECT_EQ(a.feeder_load.values(), b.feeder_load.values());
  EXPECT_DOUBLE_EQ(a.feeder.overload_minutes, b.feeder.overload_minutes);
}

TEST(FleetGrid, DisabledGridReproducesPlainRun) {
  // The lockstep loop with the controller muted must be byte-equal to
  // the one-shot run: same premises, same series, same feeder metrics.
  FleetConfig cfg = tiny_dr_heat_wave();
  cfg.grid.enabled = false;
  const FleetEngine engine(cfg);
  const FleetResult plain = engine.run(2);
  const GridFleetResult looped = engine.run_grid(2);
  expect_identical_fleet(plain, looped.fleet);
  EXPECT_TRUE(looped.signals.empty());
  EXPECT_TRUE(looped.deliveries.empty());
  EXPECT_EQ(looped.dr.shed_signals, 0u);
  // The passive feeder model still measured the transformer.
  EXPECT_GT(looped.peak_temperature_pu, 0.0);
}

TEST(FleetGrid, DrShedsStrictlyReduceOverloadMinutes) {
  // Identical seed, DR on vs off: the heat wave must overload the
  // transformer open-loop, and closing the loop must strictly reduce
  // the overload-minute count (the PR's acceptance criterion).
  FleetConfig cfg = tiny_dr_heat_wave();
  FleetConfig no_dr = cfg;
  no_dr.grid.enabled = false;

  const GridFleetResult with_dr = FleetEngine(cfg).run_grid(2);
  const GridFleetResult without = FleetEngine(no_dr).run_grid(2);

  ASSERT_GT(without.fleet.feeder.overload_minutes, 0.0)
      << "scenario must stress the transformer for DR to matter";
  EXPECT_GT(with_dr.dr.shed_signals, 0u);
  EXPECT_LT(with_dr.fleet.feeder.overload_minutes,
            without.fleet.feeder.overload_minutes);
  EXPECT_LE(with_dr.overload_minutes, without.overload_minutes);
  // Premise-side evidence the loop actually closed: signals were
  // applied inside premises, not just logged at the bus.
  std::uint64_t applied = 0;
  for (const PremiseResult& p : with_dr.fleet.premises) {
    applied += p.network.grid_signals_applied;
  }
  EXPECT_GT(applied, 0u);
}

TEST(FleetGrid, SignalLogByteIdenticalAcrossThreadCounts) {
  const FleetEngine engine(tiny_dr_heat_wave());
  const GridFleetResult one = engine.run_grid(1);
  const GridFleetResult four = engine.run_grid(4);
  const GridFleetResult seven = engine.run_grid(7);

  ASSERT_FALSE(one.signal_log_csv.empty());
  EXPECT_EQ(one.signal_log_csv, four.signal_log_csv);
  EXPECT_EQ(one.signal_log_csv, seven.signal_log_csv);
  EXPECT_EQ(one.signals, four.signals);
  EXPECT_EQ(one.deliveries, four.deliveries);
  expect_identical_fleet(one.fleet, four.fleet);
  expect_identical_fleet(one.fleet, seven.fleet);
  EXPECT_DOUBLE_EQ(one.overload_minutes, four.overload_minutes);
  EXPECT_DOUBLE_EQ(one.peak_temperature_pu, four.peak_temperature_pu);
}

TEST(FleetGrid, ZeroOptInBehavesLikeOpenLoop) {
  // Signals may be emitted and logged, but nobody acts: the premise
  // series must match the DR-off run exactly.
  FleetConfig deaf = tiny_dr_heat_wave();
  deaf.grid.bus.opt_in = 0.0;
  FleetConfig off = tiny_dr_heat_wave();
  off.grid.enabled = false;

  const GridFleetResult a = FleetEngine(deaf).run_grid(2);
  const GridFleetResult b = FleetEngine(off).run_grid(2);
  expect_identical_fleet(a.fleet, b.fleet);
  EXPECT_EQ(a.complying_premises, 0u);
  for (const grid::Delivery& d : a.deliveries) {
    EXPECT_FALSE(d.complied);
  }
}

TEST(FleetGrid, TariffReachesEveryPremiseRegardlessOfEnrollment) {
  // Time-of-use tiers apply to all customers; DR opt-in only gates
  // sheds. With zero enrollment the tariff must still be applied
  // premise-side (tariff_evening starts inside the off-peak window, so
  // the initial tier is signalled at t=0).
  FleetConfig cfg = make_scenario(ScenarioKind::kTariffEvening, 4, 1);
  cfg.horizon = sim::hours(2);
  cfg.round_period = sim::seconds(30);
  cfg.grid.bus.opt_in = 0.0;
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  ASSERT_GT(r.dr.tariff_signals, 0u);
  for (const PremiseResult& p : r.fleet.premises) {
    EXPECT_GT(p.network.grid_signals_applied, 0u) << p.index;
  }
}

TEST(FleetGrid, GridScenariosRegisteredAndConfigured) {
  const FleetConfig heat = make_scenario(ScenarioKind::kDrHeatWave, 10);
  EXPECT_TRUE(heat.grid.enabled);
  EXPECT_TRUE(heat.grid.dr.shed_enabled);

  const FleetConfig tariff =
      make_scenario(ScenarioKind::kTariffEvening, 10);
  EXPECT_TRUE(tariff.grid.enabled);
  EXPECT_EQ(tariff.grid.dr.tariff_windows.size(), 2u);

  const FleetConfig rolling =
      make_scenario(ScenarioKind::kRollingShed, 10);
  EXPECT_TRUE(rolling.grid.enabled);
  // Undersized on purpose: tighter than the plain heat wave.
  const FleetConfig plain = make_scenario(ScenarioKind::kHeatWave, 10);
  EXPECT_LT(rolling.transformer_capacity_kw,
            plain.transformer_capacity_kw);
}

TEST(FleetGrid, BadControlIntervalThrows) {
  FleetConfig cfg = tiny_dr_heat_wave();
  cfg.grid.control_interval = sim::Duration::zero();
  EXPECT_THROW(FleetEngine{cfg}, std::invalid_argument);
}

TEST(FleetGrid, BadShardingConfigThrows) {
  FleetConfig cfg = tiny_multi_feeder();
  cfg.feeder_count = 0;
  EXPECT_THROW(FleetEngine{cfg}, std::invalid_argument);
  FleetConfig skew = tiny_multi_feeder();
  skew.feeder_skew = -0.1;
  EXPECT_THROW(FleetEngine{skew}, std::invalid_argument);
}

TEST(FleetGrid, FeederAssignmentIsDeterministicAndSkewed) {
  FleetConfig cfg = tiny_multi_feeder();
  cfg.premise_count = 300;
  const FleetEngine engine(cfg);
  const FleetEngine again(cfg);
  std::vector<std::size_t> counts(cfg.feeder_count, 0);
  for (std::size_t i = 0; i < cfg.premise_count; ++i) {
    const std::size_t k = engine.feeder_of(i);
    ASSERT_LT(k, cfg.feeder_count);
    EXPECT_EQ(k, again.feeder_of(i)) << i;
    ++counts[k];
  }
  // skew 0.35 plans weights 1 : 1.35 : 1.82 — at 300 premises the last
  // shard must outnumber the first.
  EXPECT_GT(counts[2], counts[0]);

  // K=1 assigns everyone to feeder 0 without consulting the RNG.
  FleetConfig one = tiny_multi_feeder();
  one.feeder_count = 1;
  const FleetEngine single(one);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(single.feeder_of(i), 0u);
  }
  EXPECT_DOUBLE_EQ(single.feeder_capacity_share(0), 1.0);
}

TEST(FleetGrid, SpecCarriesFeederAssignment) {
  const FleetEngine engine(tiny_multi_feeder());
  for (std::size_t i = 0; i < 10; ++i) {
    const PremiseSpec spec = engine.make_spec(i);
    EXPECT_EQ(spec.feeder, engine.feeder_of(i)) << i;
    EXPECT_EQ(spec.experiment.han.feeder,
              static_cast<std::uint32_t>(spec.feeder))
        << i;
  }
}

TEST(FleetGrid, MultiFeederByteIdenticalAcrossThreadCounts) {
  const FleetEngine engine(tiny_multi_feeder());
  const GridFleetResult one = engine.run_grid(1);
  const GridFleetResult four = engine.run_grid(4);

  expect_identical_fleet(one.fleet, four.fleet);
  ASSERT_FALSE(one.signal_log_csv.empty());
  EXPECT_EQ(one.signal_log_csv, four.signal_log_csv);
  EXPECT_EQ(one.signals, four.signals);
  EXPECT_EQ(one.deliveries, four.deliveries);
  ASSERT_EQ(one.feeders.size(), four.feeders.size());
  for (std::size_t k = 0; k < one.feeders.size(); ++k) {
    EXPECT_EQ(one.feeders[k].signal_log_csv, four.feeders[k].signal_log_csv)
        << k;
    EXPECT_EQ(one.feeders[k].signals, four.feeders[k].signals) << k;
    EXPECT_DOUBLE_EQ(one.feeders[k].overload_minutes,
                     four.feeders[k].overload_minutes)
        << k;
  }
  EXPECT_DOUBLE_EQ(one.overload_minutes, four.overload_minutes);
  EXPECT_DOUBLE_EQ(one.peak_temperature_pu, four.peak_temperature_pu);
}

TEST(FleetGrid, SignalsStayOnTheirOwnFeeder) {
  FleetConfig cfg = tiny_multi_feeder();
  const FleetEngine engine(cfg);
  const GridFleetResult r = engine.run_grid(2);

  std::uint64_t total_signals = 0;
  ASSERT_EQ(r.feeders.size(), cfg.feeder_count);
  for (const FeederOutcome& fo : r.feeders) {
    total_signals += fo.signals.size();
    for (const grid::GridSignal& s : fo.signals) {
      EXPECT_EQ(s.feeder, static_cast<std::uint32_t>(fo.feeder));
    }
    for (const grid::Delivery& d : fo.deliveries) {
      EXPECT_EQ(engine.feeder_of(d.premise), fo.feeder)
          << "delivery crossed feeders: premise " << d.premise;
    }
  }
  ASSERT_GT(total_signals, 0u) << "scenario must emit signals to test routing";
  // The premise-side guard never fired: nothing was misrouted.
  for (const PremiseResult& p : r.fleet.premises) {
    EXPECT_EQ(p.network.grid_signals_misrouted, 0u) << p.index;
  }
}

TEST(FleetGrid, SingleFeederShardAndSubstationCollapseToTheFeeder) {
  // K=1: the one shard and the substation view must be exactly the
  // whole-fleet aggregate — the internal consistency behind the PR 2
  // byte-compatibility guarantee.
  const FleetEngine engine(tiny_dr_heat_wave());
  const GridFleetResult r = engine.run_grid(2);

  ASSERT_EQ(r.fleet.shards.size(), 1u);
  EXPECT_EQ(r.fleet.shards[0].premises, r.fleet.premises.size());
  EXPECT_EQ(r.fleet.shards[0].load.values(), r.fleet.feeder_load.values());
  EXPECT_DOUBLE_EQ(r.fleet.shards[0].metrics.overload_minutes,
                   r.fleet.feeder.overload_minutes);
  EXPECT_DOUBLE_EQ(r.fleet.shards[0].metrics.coincident_peak_kw,
                   r.fleet.feeder.coincident_peak_kw);
  EXPECT_DOUBLE_EQ(r.fleet.substation.inter_feeder_diversity, 1.0);

  ASSERT_EQ(r.feeders.size(), 1u);
  EXPECT_EQ(r.signal_log_csv, r.feeders[0].signal_log_csv);
  EXPECT_DOUBLE_EQ(r.overload_minutes, r.feeders[0].overload_minutes);
  EXPECT_DOUBLE_EQ(r.hot_minutes, r.feeders[0].hot_minutes);
  EXPECT_DOUBLE_EQ(r.peak_temperature_pu, r.feeders[0].peak_temperature_pu);
  EXPECT_DOUBLE_EQ(r.substation_capacity_kw, r.feeders[0].capacity_kw);
}

TEST(FleetGrid, ShardLoadsSumToTheSubstationSeries) {
  const FleetEngine engine(tiny_multi_feeder());
  const FleetResult r = engine.run(2);
  ASSERT_EQ(r.shards.size(), 3u);
  std::size_t premises = 0;
  double capacity = 0.0;
  for (const FeederShard& s : r.shards) {
    premises += s.premises;
    capacity += s.metrics.transformer_capacity_kw;
  }
  EXPECT_EQ(premises, r.premises.size());
  EXPECT_NEAR(capacity, r.feeder.transformer_capacity_kw, 1e-9);
  // Same samples, different summation order: near, not exact.
  ASSERT_FALSE(r.feeder_load.empty());
  for (std::size_t i = 0; i < r.feeder_load.size(); ++i) {
    double sum = 0.0;
    for (const FeederShard& s : r.shards) {
      if (i < s.load.size()) sum += s.load.at(i);
    }
    EXPECT_NEAR(sum, r.feeder_load.at(i), 1e-9) << i;
  }
  EXPECT_GE(r.substation.inter_feeder_diversity, 1.0);
  EXPECT_DOUBLE_EQ(r.substation.capacity_kw,
                   r.feeder.transformer_capacity_kw);
}

TEST(FleetGrid, AccountingCoversTheFullWindow) {
  // Regression for the first-interval hole: every feeder model AND the
  // substation bank are primed at t=0, so with a transformer that is
  // always overloaded the accounted overload minutes equal the whole
  // window span — not span minus the first control interval.
  FleetConfig cfg = tiny_multi_feeder();
  cfg.grid.enabled = false;       // passive observers still account
  cfg.transformer_capacity_kw = 1e-3;  // any nonzero load overloads
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  EXPECT_DOUBLE_EQ(r.overload_minutes, cfg.horizon.minutes_f());
  for (const FeederOutcome& fo : r.feeders) {
    if (fo.premises == 0) continue;  // an empty shard carries no load
    EXPECT_DOUBLE_EQ(fo.overload_minutes, cfg.horizon.minutes_f())
        << fo.feeder;
  }
}

}  // namespace
}  // namespace han::fleet
