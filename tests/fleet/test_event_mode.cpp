// Event-driven control plane at the engine level: thread-count
// determinism, open-loop equivalence with run(), the barrier-count
// reduction the mode exists for, per-feeder DrConfig overrides, and
// full-window accounting under adaptive barriers.
#include <gtest/gtest.h>

#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han::fleet {
namespace {

FleetConfig tiny_dr_heat_wave(std::uint64_t seed = 1) {
  FleetConfig cfg = make_scenario(ScenarioKind::kDrHeatWave, 6, seed);
  cfg.horizon = sim::hours(8);
  cfg.round_period = sim::seconds(30);
  cfg.grid.control_mode = ControlMode::kEventDriven;
  return cfg;
}

FleetConfig tiny_multi_feeder(std::uint64_t seed = 1) {
  FleetConfig cfg = make_scenario(ScenarioKind::kMultiFeeder, 10, seed);
  cfg.horizon = sim::hours(8);
  cfg.round_period = sim::seconds(30);
  cfg.feeder_count = 3;
  cfg.grid.control_mode = ControlMode::kEventDriven;
  return cfg;
}

void expect_identical_fleet(const FleetResult& a, const FleetResult& b) {
  ASSERT_EQ(a.premises.size(), b.premises.size());
  for (std::size_t i = 0; i < a.premises.size(); ++i) {
    EXPECT_EQ(a.premises[i].scheduler, b.premises[i].scheduler) << i;
    EXPECT_EQ(a.premises[i].requests, b.premises[i].requests) << i;
    EXPECT_EQ(a.premises[i].load.values(), b.premises[i].load.values()) << i;
  }
  EXPECT_EQ(a.feeder_load.values(), b.feeder_load.values());
  EXPECT_DOUBLE_EQ(a.feeder.overload_minutes, b.feeder.overload_minutes);
}

TEST(EventMode, ByteIdenticalAcrossThreadCounts) {
  const FleetEngine engine(tiny_dr_heat_wave());
  const GridFleetResult one = engine.run_grid(1);
  const GridFleetResult four = engine.run_grid(4);
  const GridFleetResult seven = engine.run_grid(7);

  ASSERT_FALSE(one.signal_log_csv.empty());
  EXPECT_EQ(one.signal_log_csv, four.signal_log_csv);
  EXPECT_EQ(one.signal_log_csv, seven.signal_log_csv);
  EXPECT_EQ(one.signals, four.signals);
  EXPECT_EQ(one.deliveries, four.deliveries);
  EXPECT_EQ(one.control_barriers, four.control_barriers);
  EXPECT_EQ(one.controller_wakes, four.controller_wakes);
  expect_identical_fleet(one.fleet, four.fleet);
  expect_identical_fleet(one.fleet, seven.fleet);
  EXPECT_DOUBLE_EQ(one.overload_minutes, four.overload_minutes);
  EXPECT_DOUBLE_EQ(one.peak_temperature_pu, four.peak_temperature_pu);
}

TEST(EventMode, MultiFeederByteIdenticalAcrossThreadCounts) {
  const FleetEngine engine(tiny_multi_feeder());
  const GridFleetResult one = engine.run_grid(1);
  const GridFleetResult four = engine.run_grid(4);
  expect_identical_fleet(one.fleet, four.fleet);
  EXPECT_EQ(one.signal_log_csv, four.signal_log_csv);
  ASSERT_EQ(one.feeders.size(), four.feeders.size());
  for (std::size_t k = 0; k < one.feeders.size(); ++k) {
    EXPECT_EQ(one.feeders[k].signals, four.feeders[k].signals) << k;
    EXPECT_EQ(one.feeders[k].controller_wakes,
              four.feeders[k].controller_wakes)
        << k;
    EXPECT_DOUBLE_EQ(one.feeders[k].overload_minutes,
                     four.feeders[k].overload_minutes)
        << k;
  }
}

TEST(EventMode, OpenLoopReproducesPlainRun) {
  // With the controllers muted the premises never hear the grid, so
  // adaptive barriers must not change any premise-side output: the
  // event-driven open loop reproduces run() byte-for-byte.
  FleetConfig cfg = tiny_dr_heat_wave();
  cfg.grid.enabled = false;
  const FleetEngine engine(cfg);
  const FleetResult plain = engine.run(2);
  const GridFleetResult looped = engine.run_grid(2);
  expect_identical_fleet(plain, looped.fleet);
  EXPECT_TRUE(looped.signals.empty());
  EXPECT_EQ(looped.dr.shed_signals, 0u);
  // The passive models still measured the transformer (coarsely).
  EXPECT_GT(looped.peak_temperature_pu, 0.0);
}

TEST(EventMode, CutsBarriersAndControllerWakes) {
  FleetConfig event = tiny_multi_feeder();
  FleetConfig polled = event;
  polled.grid.control_mode = ControlMode::kPolled;

  const GridFleetResult ev = FleetEngine(event).run_grid(2);
  const GridFleetResult po = FleetEngine(polled).run_grid(2);

  // Polled: one barrier per control interval plus the prime, and every
  // controller woken at each one.
  const auto intervals = static_cast<std::uint64_t>(
      polled.horizon / polled.grid.control_interval);
  EXPECT_EQ(po.control_barriers, intervals + 1);
  EXPECT_EQ(po.controller_wakes,
            po.control_barriers * polled.feeder_count);

  // Event-driven: the acceptance bar is >= 5x fewer barriers, and
  // controllers wake at most once per barrier.
  EXPECT_GE(po.control_barriers, 5 * ev.control_barriers)
      << "event mode barriers: " << ev.control_barriers;
  EXPECT_LE(ev.controller_wakes,
            ev.control_barriers * event.feeder_count);
  EXPECT_GT(ev.dr.shed_signals, 0u) << "the scenario must still shed";
}

TEST(EventMode, PerFeederDrOverridesApply) {
  // Run under polled mode so barrier times are fixed: an override on
  // feeder 0 must leave the other shards' signal streams untouched
  // (in event mode feeder 0's deadlines legitimately move the shared
  // barriers), and every shed feeder 0 emits must carry the
  // override's target.
  FleetConfig cfg = tiny_multi_feeder();
  cfg.grid.control_mode = ControlMode::kPolled;
  grid::DrConfig tuned = cfg.grid.dr;
  tuned.target_utilization = 0.8;
  tuned.trigger_hold = sim::minutes(9);
  cfg.grid.feeder_dr = {tuned};
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  ASSERT_EQ(r.feeders.size(), 3u);

  FleetConfig plain = tiny_multi_feeder();
  plain.grid.control_mode = ControlMode::kPolled;
  const GridFleetResult base = FleetEngine(plain).run_grid(2);
  EXPECT_EQ(r.feeders[1].signals, base.feeders[1].signals);
  EXPECT_EQ(r.feeders[2].signals, base.feeders[2].signals);
  for (const grid::GridSignal& s : r.feeders[0].signals) {
    if (s.kind != grid::SignalKind::kDrShed) continue;
    EXPECT_DOUBLE_EQ(s.target_kw, 0.8 * r.feeders[0].capacity_kw);
  }
}

TEST(EventMode, PerFeederOverrideCanMuteOneShard) {
  FleetConfig cfg = tiny_multi_feeder();
  grid::DrConfig muted = cfg.grid.dr;
  muted.shed_enabled = false;
  // Feeder 1 disengaged (nullopt): shared config. Feeder 0 muted.
  cfg.grid.feeder_dr = {muted, std::nullopt};
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  EXPECT_EQ(r.feeders[0].dr.shed_signals, 0u);
  std::uint64_t rest = 0;
  for (std::size_t k = 1; k < r.feeders.size(); ++k) {
    rest += r.feeders[k].dr.shed_signals;
  }
  EXPECT_GT(rest, 0u) << "other shards must still shed";
}

TEST(EventMode, AccountingCoversTheFullWindow) {
  // Adaptive barriers must not open accounting holes: with an
  // always-overloaded transformer the monitor-sourced overload minutes
  // still cover the whole (0, horizon] span.
  FleetConfig cfg = tiny_multi_feeder();
  cfg.grid.enabled = false;
  cfg.transformer_capacity_kw = 1e-3;
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  EXPECT_DOUBLE_EQ(r.overload_minutes, cfg.horizon.minutes_f());
  for (const FeederOutcome& fo : r.feeders) {
    if (fo.premises == 0) continue;
    EXPECT_DOUBLE_EQ(fo.overload_minutes, cfg.horizon.minutes_f())
        << fo.feeder;
  }
}

TEST(EventMode, FinalBarrierWakesEveryController) {
  // A quiet grid-enabled run: no crossings, no deadlines — yet every
  // controller must still observe the horizon-end barrier (the polled
  // loop's final control step does), or the DR time integrals would
  // silently drop the tail between a controller's last wake and the
  // horizon.
  FleetConfig cfg = tiny_multi_feeder();
  cfg.transformer_capacity_kw = 1e9;  // nothing ever crosses a band
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  EXPECT_EQ(r.dr.shed_signals, 0u);
  for (const FeederOutcome& fo : r.feeders) {
    EXPECT_EQ(fo.controller_wakes, 2u) << fo.feeder;  // prime + horizon end
  }
}

TEST(EventMode, BadObserveCapThrows) {
  FleetConfig cfg = tiny_dr_heat_wave();
  cfg.grid.observe_cap = sim::Duration::zero();
  EXPECT_THROW(FleetEngine{cfg}, std::invalid_argument);
}

TEST(EventMode, BarriersStayOnTheControlIntervalGrid) {
  // Every delivery timestamp derives from a barrier; barriers snapped
  // to the grid mean every emitted signal's time is a whole multiple
  // of the control interval.
  FleetConfig cfg = tiny_multi_feeder();
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  ASSERT_FALSE(r.signals.empty());
  for (const grid::GridSignal& s : r.signals) {
    EXPECT_EQ(s.at.us() % cfg.grid.control_interval.us(), 0)
        << "signal " << s.id << " off-grid at " << s.at.us();
  }
}

}  // namespace
}  // namespace han::fleet
