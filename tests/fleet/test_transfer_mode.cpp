// Tie-switch transfers at the fleet-engine level: transfers-disabled
// byte-identity with the transfer-free engine, determinism of the
// full transfer pipeline across executor widths in both control
// modes, well-formedness of the actuation log, and the accounting
// that hangs off it.
#include <gtest/gtest.h>

#include <vector>

#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han::fleet {
namespace {

/// tie_switch shrunk to test size: 12 premises over 4 skewed feeders,
/// 8 h. The small shards overload against their thin capacity shares,
/// which is exactly what makes transfers fire.
FleetConfig tiny_tie_switch(std::uint64_t seed = 1) {
  FleetConfig cfg = make_scenario(ScenarioKind::kTieSwitch, 12, seed);
  cfg.horizon = sim::hours(8);
  cfg.round_period = sim::seconds(30);
  return cfg;
}

void expect_identical_grid_results(const GridFleetResult& a,
                                   const GridFleetResult& b) {
  EXPECT_EQ(a.signal_log_csv, b.signal_log_csv);
  EXPECT_EQ(a.signals, b.signals);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.transfers, b.transfers);
  EXPECT_EQ(a.control_barriers, b.control_barriers);
  EXPECT_EQ(a.fleet.feeder_load.values(), b.fleet.feeder_load.values());
  ASSERT_EQ(a.feeders.size(), b.feeders.size());
  for (std::size_t k = 0; k < a.feeders.size(); ++k) {
    EXPECT_EQ(a.feeders[k].premises, b.feeders[k].premises) << k;
    EXPECT_EQ(a.feeders[k].transfers_out, b.feeders[k].transfers_out) << k;
    EXPECT_EQ(a.feeders[k].transfers_in, b.feeders[k].transfers_in) << k;
    EXPECT_EQ(a.feeders[k].energy_lent_kwh, b.feeders[k].energy_lent_kwh)
        << k;
    EXPECT_EQ(a.feeders[k].energy_borrowed_kwh,
              b.feeders[k].energy_borrowed_kwh)
        << k;
    EXPECT_EQ(a.feeders[k].overload_minutes, b.feeders[k].overload_minutes)
        << k;
  }
  EXPECT_EQ(a.fleet.substation.tie_switch_operations,
            b.fleet.substation.tie_switch_operations);
  EXPECT_EQ(a.fleet.substation.transferred_energy_kwh,
            b.fleet.substation.transferred_energy_kwh);
}

TEST(TransferMode, DisabledTransfersReproduceMultiFeederByteForByte) {
  // tie_switch with the ties muted IS multi_feeder: every output —
  // signal log included — must be byte-identical to the transfer-free
  // preset at the same premises/seed.
  FleetConfig tied = tiny_tie_switch();
  tied.grid.tie.enabled = false;
  FleetConfig base = make_scenario(ScenarioKind::kMultiFeeder, 12, 1);
  base.horizon = sim::hours(8);
  base.round_period = sim::seconds(30);
  const GridFleetResult a = FleetEngine(tied).run_grid(2);
  const GridFleetResult b = FleetEngine(base).run_grid(2);
  expect_identical_grid_results(a, b);
  EXPECT_TRUE(a.transfers.empty());
  EXPECT_EQ(a.fleet.substation.tie_switch_operations, 0u);
  EXPECT_EQ(a.fleet.substation.transferred_energy_kwh, 0.0);
}

TEST(TransferMode, TransfersFireOnTheTinyPreset) {
  // Guard against the rest of this suite silently testing a no-op
  // config: the shrunk preset must actually produce transfers.
  const GridFleetResult r = FleetEngine(tiny_tie_switch()).run_grid(2);
  EXPECT_GT(r.fleet.substation.tie_transfers, 0u);
  EXPECT_GT(r.fleet.substation.transferred_energy_kwh, 0.0);
}

TEST(TransferMode, PolledTransfersByteIdenticalAcrossThreadCounts) {
  const FleetEngine engine(tiny_tie_switch());
  const GridFleetResult one = engine.run_grid(1);
  const GridFleetResult four = engine.run_grid(4);
  expect_identical_grid_results(one, four);
  EXPECT_GT(one.transfers.size(), 0u);
}

TEST(TransferMode, EventTransfersByteIdenticalAcrossThreadCounts) {
  FleetConfig cfg = tiny_tie_switch();
  cfg.grid.control_mode = ControlMode::kEventDriven;
  const FleetEngine engine(cfg);
  const GridFleetResult one = engine.run_grid(1);
  const GridFleetResult four = engine.run_grid(4);
  expect_identical_grid_results(one, four);
}

TEST(TransferMode, TransferLogIsWellFormed) {
  const GridFleetResult r = FleetEngine(tiny_tie_switch()).run_grid(2);
  ASSERT_GT(r.transfers.size(), 0u);
  sim::TimePoint last = sim::TimePoint::epoch();
  for (const grid::TieEvent& ev : r.transfers) {
    EXPECT_GE(ev.at, last);  // actuation order
    last = ev.at;
    EXPECT_NE(ev.from, ev.to);
    EXPECT_LT(ev.from, r.feeders.size());
    EXPECT_LT(ev.to, r.feeders.size());
    ASSERT_FALSE(ev.premises.empty());
    for (std::size_t i = 1; i < ev.premises.size(); ++i) {
      EXPECT_LT(ev.premises[i - 1], ev.premises[i]);
    }
    EXPECT_GT(ev.moved_kw, 0.0);
  }
}

TEST(TransferMode, PerFeederCountersMatchTheLog) {
  const GridFleetResult r = FleetEngine(tiny_tie_switch()).run_grid(2);
  std::vector<std::uint64_t> out(r.feeders.size(), 0);
  std::vector<std::uint64_t> in(r.feeders.size(), 0);
  std::uint64_t moves = 0;
  std::uint64_t give_backs = 0;
  for (const grid::TieEvent& ev : r.transfers) {
    moves += ev.premises.size();
    if (ev.give_back) {
      ++give_backs;
      continue;
    }
    ++out[ev.from];
    ++in[ev.to];
  }
  for (std::size_t k = 0; k < r.feeders.size(); ++k) {
    EXPECT_EQ(r.feeders[k].transfers_out, out[k]) << k;
    EXPECT_EQ(r.feeders[k].transfers_in, in[k]) << k;
  }
  EXPECT_EQ(r.fleet.substation.premises_transferred, moves);
  EXPECT_EQ(r.fleet.substation.tie_give_backs, give_backs);
  EXPECT_EQ(r.fleet.substation.tie_switch_operations, r.transfers.size());
  // Lent and borrowed energy are two views of the same kWh.
  double lent = 0.0;
  double borrowed = 0.0;
  for (const FeederOutcome& fo : r.feeders) {
    lent += fo.energy_lent_kwh;
    borrowed += fo.energy_borrowed_kwh;
  }
  EXPECT_DOUBLE_EQ(lent, borrowed);
  EXPECT_DOUBLE_EQ(lent, r.fleet.substation.transferred_energy_kwh);
}

TEST(TransferMode, EndMembershipCountsSumToTheFleet) {
  const GridFleetResult r = FleetEngine(tiny_tie_switch()).run_grid(2);
  std::size_t total = 0;
  for (const FeederOutcome& fo : r.feeders) total += fo.premises;
  EXPECT_EQ(total, 12u);
}

TEST(TransferMode, NoSignalIsEverMisrouted) {
  // Premises drop signals stamped for a foreign feeder. Migration
  // re-stamps the premise and drops in-flight signals from the old
  // head end, so the counter must stay zero even with heavy transfer
  // traffic in both control modes.
  for (const ControlMode mode :
       {ControlMode::kPolled, ControlMode::kEventDriven}) {
    FleetConfig cfg = tiny_tie_switch();
    cfg.grid.control_mode = mode;
    const GridFleetResult r = FleetEngine(cfg).run_grid(3);
    for (const PremiseResult& p : r.fleet.premises) {
      EXPECT_EQ(p.network.grid_signals_misrouted, 0u) << p.index;
    }
  }
}

TEST(TransferMode, SingleFeederMutesTransfers) {
  // K=1 has no neighbor: the tie config is ignored and the run stays
  // transfer-free (and identical to the K=1 multi_feeder run).
  FleetConfig cfg = tiny_tie_switch();
  cfg.feeder_count = 1;
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  EXPECT_TRUE(r.transfers.empty());
  EXPECT_EQ(r.fleet.substation.tie_switch_operations, 0u);
}

TEST(TransferMode, OpenLoopMutesTransfers) {
  // The open-loop baseline (grid.enabled == false) must stay the pure
  // counterfactual even when the preset asks for ties.
  FleetConfig cfg = tiny_tie_switch();
  cfg.grid.enabled = false;
  const GridFleetResult r = FleetEngine(cfg).run_grid(2);
  EXPECT_TRUE(r.transfers.empty());
  EXPECT_TRUE(r.signals.empty());
}

}  // namespace
}  // namespace han::fleet
