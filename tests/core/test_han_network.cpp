// HanNetwork assembly: topologies, config validation, request routing,
// abstract CP behaviour, Type-1 integration.
#include <gtest/gtest.h>

#include "core/han_network.hpp"

namespace han::core {
namespace {

HanConfig abstract_config(std::size_t n = 6,
                          SchedulerKind k = SchedulerKind::kCoordinated) {
  HanConfig c;
  c.device_count = n;
  c.topology_kind = TopologyKind::kLine;
  c.fidelity = CpFidelity::kAbstract;
  c.scheduler = k;
  return c;
}

TEST(HanNetwork, RejectsBadConfigs) {
  sim::Simulator sim;
  HanConfig c;
  c.device_count = 0;
  EXPECT_THROW(HanNetwork(sim, c), std::invalid_argument);

  HanConfig c2;
  c2.device_count = 10;
  c2.topology_kind = TopologyKind::kFlockLab26;  // needs exactly 26
  EXPECT_THROW(HanNetwork(sim, c2), std::invalid_argument);

  HanConfig c3;
  c3.topology_kind = TopologyKind::kCustom;  // missing custom topology
  EXPECT_THROW(HanNetwork(sim, c3), std::invalid_argument);
}

TEST(HanNetwork, CustomTopologyAccepted) {
  sim::Simulator sim;
  HanConfig c = abstract_config(3);
  c.topology_kind = TopologyKind::kCustom;
  c.custom_topology = net::Topology::line(3, 7.0);
  HanNetwork net(sim, c);
  EXPECT_DOUBLE_EQ(net.topology().distance_between(0, 2), 14.0);
}

TEST(HanNetwork, MakeTopologyShapes) {
  sim::Rng rng(1);
  EXPECT_EQ(make_topology(TopologyKind::kFlockLab26, 26, rng).size(), 26u);
  EXPECT_EQ(make_topology(TopologyKind::kGrid, 7, rng).size(), 7u);
  EXPECT_EQ(make_topology(TopologyKind::kLine, 5, rng).size(), 5u);
  EXPECT_EQ(make_topology(TopologyKind::kRing, 9, rng).size(), 9u);
  EXPECT_EQ(make_topology(TopologyKind::kRandom, 11, rng).size(), 11u);
}

TEST(HanNetwork, RequestRoutingToDevice) {
  sim::Simulator sim;
  HanNetwork net(sim, abstract_config());
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  appliance::Request r;
  r.at = sim::TimePoint::epoch() + sim::minutes(1);
  r.device = 3;
  r.service = sim::minutes(30);
  net.inject_request(r);
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(2));
  EXPECT_TRUE(net.di(3).appliance().active(sim.now()));
  EXPECT_FALSE(net.di(2).appliance().active(sim.now()));
  EXPECT_EQ(net.stats().requests_injected, 1u);
}

TEST(HanNetwork, RejectsUnknownDevice) {
  sim::Simulator sim;
  HanNetwork net(sim, abstract_config(4));
  appliance::Request r;
  r.device = 99;
  EXPECT_THROW(net.inject_request(r), std::out_of_range);
}

TEST(HanNetwork, AbstractCpDeliversViews) {
  sim::Simulator sim;
  HanConfig c = abstract_config(5);
  c.abstract_reliability = 1.0;
  HanNetwork net(sim, c);
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  sim.run_until(sim::TimePoint::epoch() + sim::seconds(10));
  EXPECT_DOUBLE_EQ(net.stats().cp_mean_coverage, 1.0);
}

TEST(HanNetwork, AbstractCpLossyCoverage) {
  sim::Simulator sim;
  HanConfig c = abstract_config(5);
  c.abstract_reliability = 0.5;
  HanNetwork net(sim, c);
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  sim.run_until(sim::TimePoint::epoch() + sim::seconds(30));
  EXPECT_NEAR(net.stats().cp_mean_coverage, 0.5, 0.15);
}

TEST(HanNetwork, TotalLoadSumsType2AndType1) {
  sim::Simulator sim;
  HanNetwork net(sim, abstract_config(4));
  appliance::ApplianceInfo tv;
  tv.name = "tv";
  tv.rated_kw = 0.2;
  const std::size_t idx = net.add_type1(tv);
  net.inject_type1_session(sim::TimePoint::epoch() + sim::minutes(1), idx,
                           sim::minutes(60));
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  appliance::Request r;
  r.at = sim::TimePoint::epoch() + sim::minutes(1);
  r.device = 0;
  r.service = sim::minutes(30);
  net.inject_request(r);
  sim.run_until(sim::TimePoint::epoch() + sim::minutes(20));
  // Type-1 contributes 0.2 kW; the Type-2 device may or may not be in
  // its window right now, so load is 0.2 or 1.2.
  const double load = net.total_load_kw();
  EXPECT_TRUE(load == 0.2 || load == 1.2) << load;
}

TEST(HanNetwork, PacketLevelBootsAndExchanges) {
  sim::Simulator sim;
  HanConfig c;
  c.device_count = 4;
  c.topology_kind = TopologyKind::kLine;
  c.fidelity = CpFidelity::kPacketLevel;
  c.channel.shadowing_sigma_db = 0.0;
  HanNetwork net(sim, c);
  ASSERT_NE(net.minicast(), nullptr);
  net.start(sim::TimePoint::epoch() + sim::milliseconds(10));
  sim.run_until(sim::TimePoint::epoch() + sim::seconds(7));
  EXPECT_GE(net.minicast()->stats().rounds, 3u);
  EXPECT_GE(net.minicast()->stats().mean_coverage(), 0.99);
}

TEST(HanNetwork, ForeignFeederSignalsAreDropped) {
  sim::Simulator sim;
  HanConfig c = abstract_config();
  c.dr_aware = true;
  c.feeder = 1;
  HanNetwork net(sim, c);

  grid::GridSignal shed;
  shed.kind = grid::SignalKind::kDrShed;
  shed.period_stretch = 3;
  shed.duration = sim::minutes(30);

  // Stamped for feeder 0: not ours — must be counted and ignored.
  shed.feeder = 0;
  net.apply_grid_signal(shed);
  EXPECT_FALSE(net.grid_pressure().shed_active);
  EXPECT_EQ(net.stats().grid_signals_applied, 0u);
  EXPECT_EQ(net.stats().grid_signals_misrouted, 1u);

  // Our own feeder's copy applies normally.
  shed.feeder = 1;
  net.apply_grid_signal(shed);
  EXPECT_TRUE(net.grid_pressure().shed_active);
  EXPECT_EQ(net.grid_pressure().period_stretch, 3);
  EXPECT_EQ(net.stats().grid_signals_applied, 1u);
  EXPECT_EQ(net.stats().grid_signals_misrouted, 1u);
}

TEST(HanNetwork, SchedulerKindSelectsPolicy) {
  sim::Simulator sim;
  HanNetwork a(sim, abstract_config(3, SchedulerKind::kCoordinated));
  HanNetwork b(sim, abstract_config(3, SchedulerKind::kUncoordinated));
  EXPECT_EQ(a.scheduler().name(), "coordinated");
  EXPECT_EQ(b.scheduler().name(), "uncoordinated");
  EXPECT_EQ(to_string(SchedulerKind::kCoordinated), "coordinated");
}

}  // namespace
}  // namespace han::core
