// DeviceInterface: plan actuation, latching, gates, slot-claim lifecycle.
#include <gtest/gtest.h>

#include "core/device_interface.hpp"
#include "sched/coordinated.hpp"
#include "sched/uncoordinated.hpp"

namespace han::core {
namespace {

using appliance::ApplianceInfo;
using appliance::DutyCycleConstraints;
using appliance::Type2Appliance;
using sched::DeviceStatus;
using sched::GlobalView;

struct DiRig {
  explicit DiRig(const sched::Scheduler& policy, net::NodeId id = 0)
      : di(sim, make_appliance(id), policy) {}

  static Type2Appliance make_appliance(net::NodeId id) {
    ApplianceInfo info;
    info.id = id;
    info.rated_kw = 1.0;
    return Type2Appliance(info, DutyCycleConstraints{});
  }

  /// Runs EP rounds every 2 s until `until_min`, feeding the DI a view
  /// of just itself (single-device system).
  void run_rounds_until(sim::Ticks until_min) {
    while (sim.now() < sim::TimePoint::epoch() + sim::minutes(until_min)) {
      sim.run_until(sim.now() + sim::seconds(2));
      GlobalView v;
      v.now = sim.now();
      v.devices = {di.own_status()};
      di.on_round_complete(v, true);
    }
  }

  sim::Simulator sim;
  DeviceInterface di;
};

TEST(DeviceInterface, IdleDeviceNeverSwitches) {
  sched::CoordinatedScheduler policy;
  DiRig rig(policy);
  rig.run_rounds_until(60);
  EXPECT_EQ(rig.di.appliance().switch_count(), 0u);
  EXPECT_FALSE(rig.di.appliance().relay_on());
}

TEST(DeviceInterface, CoordinatedServesOneBurstPerRequest) {
  sched::CoordinatedScheduler policy;
  DiRig rig(policy);
  rig.sim.schedule_at(sim::TimePoint::epoch() + sim::minutes(3),
                      [&] { rig.di.add_demand(sim::minutes(30)); });
  rig.run_rounds_until(60);
  EXPECT_NEAR(rig.di.appliance().total_on_time(rig.sim.now()).minutes_f(),
              15.0, 0.5);
  EXPECT_EQ(rig.di.appliance().min_dcd_violations(), 0u);
  EXPECT_EQ(rig.di.stats().service_gap_violations, 0u);
}

TEST(DeviceInterface, UncoordinatedServesImmediately) {
  sched::UncoordinatedScheduler policy;
  DiRig rig(policy);
  rig.sim.schedule_at(sim::TimePoint::epoch() + sim::minutes(3),
                      [&] { rig.di.add_demand(sim::minutes(30)); });
  rig.run_rounds_until(40);
  // Free-running: ON within one round of the request.
  EXPECT_NEAR(rig.di.appliance().total_on_time(rig.sim.now()).minutes_f(),
              15.0, 0.5);
}

TEST(DeviceInterface, SlotClaimLifecycle) {
  sched::CoordinatedScheduler policy;
  DiRig rig(policy);
  EXPECT_EQ(rig.di.claimed_slot(), sched::kNoSlot);
  rig.sim.schedule_at(sim::TimePoint::epoch() + sim::minutes(1),
                      [&] { rig.di.add_demand(sim::minutes(30)); });
  rig.run_rounds_until(5);
  EXPECT_NE(rig.di.claimed_slot(), sched::kNoSlot);
  rig.run_rounds_until(45);  // demand (snapped to [1, 31)) long expired
  EXPECT_EQ(rig.di.claimed_slot(), sched::kNoSlot);
}

TEST(DeviceInterface, MinDcdLatchPreventsShortBurst) {
  sched::CoordinatedScheduler policy;
  DiRig rig(policy);
  // Demand expires sooner than the burst can complete: the latch must
  // keep the relay closed for the full minDCD anyway.
  rig.sim.schedule_at(sim::TimePoint::epoch() + sim::minutes(1),
                      [&] { rig.di.add_demand(sim::minutes(30)); });
  rig.run_rounds_until(90);
  EXPECT_EQ(rig.di.appliance().min_dcd_violations(), 0u);
  EXPECT_GE(rig.di.stats().latch_saves, 0u);
}

TEST(DeviceInterface, OwnStatusReflectsAppliance) {
  sched::CoordinatedScheduler policy;
  DiRig rig(policy, 9);
  const DeviceStatus s0 = rig.di.own_status();
  EXPECT_EQ(s0.id, 9);
  EXPECT_FALSE(s0.has_demand);
  rig.di.add_demand(sim::minutes(30));
  const DeviceStatus s1 = rig.di.own_status();
  EXPECT_TRUE(s1.has_demand);
  EXPECT_TRUE(s1.burst_pending);
  EXPECT_EQ(s1.min_dcd, sim::minutes(15));
}

TEST(DeviceInterface, HoldsStateWhenOwnRecordMissing) {
  sched::CoordinatedScheduler policy;
  DiRig rig(policy);
  rig.di.add_demand(sim::minutes(30));
  GlobalView empty;
  empty.now = rig.sim.now();
  rig.di.on_round_complete(empty, false);
  EXPECT_EQ(rig.di.stats().stale_view_rounds, 1u);
}

TEST(DeviceInterface, TwoBackToBackDemandsBothServed) {
  sched::CoordinatedScheduler policy;
  DiRig rig(policy);
  rig.sim.schedule_at(sim::TimePoint::epoch() + sim::minutes(2),
                      [&] { rig.di.add_demand(sim::minutes(30)); });
  rig.sim.schedule_at(sim::TimePoint::epoch() + sim::minutes(34),
                      [&] { rig.di.add_demand(sim::minutes(30)); });
  rig.run_rounds_until(120);
  EXPECT_NEAR(rig.di.appliance().total_on_time(rig.sim.now()).minutes_f(),
              30.0, 1.0);
  EXPECT_EQ(rig.di.stats().service_gap_violations, 0u);
}

TEST(DeviceInterface, LongDemandGetsBurstEveryPeriod) {
  sched::CoordinatedScheduler policy;
  DiRig rig(policy);
  rig.sim.schedule_at(sim::TimePoint::epoch() + sim::minutes(2),
                      [&] { rig.di.add_demand(sim::minutes(90)); });
  rig.run_rounds_until(150);
  // 90 min demand = 3 periods = 3 bursts of 15 min.
  EXPECT_NEAR(rig.di.appliance().total_on_time(rig.sim.now()).minutes_f(),
              45.0, 1.5);
  EXPECT_EQ(rig.di.stats().service_gap_violations, 0u);
  EXPECT_EQ(rig.di.appliance().min_dcd_violations(), 0u);
}

}  // namespace
}  // namespace han::core
