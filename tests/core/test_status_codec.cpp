// Status codec: round-trip property over the encodable domain, clamping.
#include <gtest/gtest.h>

#include "core/status_codec.hpp"
#include "sim/random.hpp"

namespace han::core {
namespace {

using sched::DeviceStatus;

TEST(StatusCodec, RoundTripsTypicalStatus) {
  DeviceStatus s;
  s.id = 7;
  s.has_demand = true;
  s.relay_on = true;
  s.burst_pending = true;
  s.demand_since = sim::TimePoint::epoch() + sim::minutes(123);
  s.demand_until = sim::TimePoint::epoch() + sim::minutes(153);
  s.min_dcd = sim::minutes(15);
  s.max_dcp = sim::minutes(30);
  s.rated_kw = 1.0;
  s.slot = 1;
  ASSERT_TRUE(is_encodable(s));
  EXPECT_EQ(decode_status(7, encode_status(s)), s);
}

TEST(StatusCodec, RoundTripsIdleStatus) {
  DeviceStatus s;
  s.id = 3;
  ASSERT_TRUE(is_encodable(s));
  EXPECT_EQ(decode_status(3, encode_status(s)), s);
}

TEST(StatusCodec, NoSlotSurvives) {
  DeviceStatus s;
  s.id = 1;
  s.slot = sched::kNoSlot;
  const DeviceStatus d = decode_status(1, encode_status(s));
  EXPECT_FALSE(d.slot_assigned());
}

TEST(StatusCodec, ClampsOutOfRange) {
  DeviceStatus s;
  s.id = 1;
  s.rated_kw = 99.0;  // 990 tenths > 255
  s.min_dcd = sim::minutes(500);
  s.max_dcp = sim::minutes(500);
  EXPECT_FALSE(is_encodable(s));
  const DeviceStatus d = decode_status(1, encode_status(s));
  EXPECT_DOUBLE_EQ(d.rated_kw, 25.5);
  EXPECT_EQ(d.min_dcd, sim::minutes(255));
}

TEST(StatusCodec, SubSecondTimesNotEncodable) {
  DeviceStatus s;
  s.demand_since = sim::TimePoint{1'500'000};  // 1.5 s
  EXPECT_FALSE(is_encodable(s));
}

// Property: encode/decode is the identity on the encodable domain.
class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecFuzz, RandomRoundTrips) {
  sim::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    DeviceStatus s;
    s.id = static_cast<net::NodeId>(rng.uniform_int(0, 200));
    s.has_demand = rng.bernoulli(0.7);
    s.relay_on = rng.bernoulli(0.4);
    s.burst_pending = rng.bernoulli(0.5);
    s.demand_since = sim::TimePoint::epoch() +
                     sim::seconds(rng.uniform_int(0, 0xFFFFFF));
    s.demand_until = sim::TimePoint::epoch() +
                     sim::seconds(rng.uniform_int(0, 0xFFFFFF));
    const auto dcd = rng.uniform_int(1, 120);
    s.min_dcd = sim::minutes(dcd);
    s.max_dcp = sim::minutes(rng.uniform_int(dcd, 255));
    s.rated_kw = static_cast<double>(rng.uniform_int(0, 255)) / 10.0;
    s.slot = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    ASSERT_TRUE(is_encodable(s));
    const DeviceStatus d = decode_status(s.id, encode_status(s));
    EXPECT_EQ(d, s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace han::core
