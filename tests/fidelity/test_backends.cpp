// PremiseBackend contract tests.
//
// The load-bearing guarantee: FullBackend is a verbatim port of the
// grid loop's per-premise runtime, so driving one open-loop must equal
// FleetEngine::run_premise byte-for-byte. The rest pins the policy
// layer — deterministic stratified tier assignment and flag parsing —
// which decides WHICH premises get the cheap tiers.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "fidelity/backend.hpp"
#include "fidelity/device_backend.hpp"
#include "fidelity/full_backend.hpp"
#include "fidelity/statistical_backend.hpp"
#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"

namespace han::fidelity {
namespace {

fleet::PremiseSpec grid_spec(fleet::ScenarioKind kind, std::size_t premises,
                             std::uint64_t seed, std::size_t index) {
  const fleet::FleetConfig cfg = fleet::make_scenario(kind, premises, seed);
  const fleet::FleetEngine engine(cfg);
  fleet::PremiseSpec spec = engine.make_spec(index);
  spec.experiment.han.dr_aware = true;  // what the grid loop sets
  return spec;
}

TEST(FullBackend, OpenLoopMatchesRunPremiseByteForByte) {
  for (const std::size_t index : {std::size_t{0}, std::size_t{3}}) {
    const fleet::PremiseSpec spec =
        grid_spec(fleet::ScenarioKind::kEveningPeak, 8, 7, index);
    const sim::TimePoint end =
        sim::TimePoint::epoch() + spec.experiment.workload.horizon;

    FullBackend backend{fleet::PremiseSpec(spec)};
    backend.advance_to(end);
    const fleet::PremiseResult via_backend = backend.finish();
    const fleet::PremiseResult direct = fleet::FleetEngine::run_premise(spec);

    ASSERT_EQ(via_backend.load.values().size(), direct.load.values().size());
    for (std::size_t s = 0; s < direct.load.values().size(); ++s) {
      EXPECT_EQ(via_backend.load.values()[s], direct.load.values()[s])
          << "premise " << index << " sample " << s;
    }
    EXPECT_EQ(via_backend.network.requests_injected,
              direct.network.requests_injected);
    EXPECT_EQ(via_backend.mean_kw, direct.mean_kw);
    EXPECT_EQ(via_backend.peak_kw, direct.peak_kw);
  }
}

TEST(MakeBackend, ConstructsRequestedTier) {
  const fleet::PremiseSpec spec =
      grid_spec(fleet::ScenarioKind::kScaleSweep, 4, 1, 0);
  const CalibrationTable cal = CalibrationTable::defaults();
  EXPECT_EQ(make_backend(FidelityTier::kFull, spec, cal)->tier(),
            FidelityTier::kFull);
  EXPECT_EQ(make_backend(FidelityTier::kDevice, spec, cal)->tier(),
            FidelityTier::kDevice);
  EXPECT_EQ(make_backend(FidelityTier::kStatistical, spec, cal)->tier(),
            FidelityTier::kStatistical);
}

TEST(Backend, MigrationDropsOldFeederSignalsAndAdoptsTariff) {
  fleet::PremiseSpec spec =
      grid_spec(fleet::ScenarioKind::kScaleSweep, 4, 1, 0);
  spec.feeder = 0;
  StatisticalBackend b{std::move(spec), CalibrationTable::defaults()};
  ASSERT_EQ(b.current_feeder(), 0u);

  grid::GridSignal shed;
  shed.kind = grid::SignalKind::kDrShed;
  shed.feeder = 0;  // old head end — must be dropped by the migration
  shed.period_stretch = 4;
  shed.duration = sim::hours(2);
  b.queue_signal(sim::TimePoint::epoch() + sim::minutes(10), shed);

  b.migrate_to_feeder(1, grid::TariffTier::kPeak);
  EXPECT_EQ(b.current_feeder(), 1u);
  EXPECT_EQ(b.spec().feeder, 0u) << "home feeder must not change";
  EXPECT_EQ(b.tariff_tier(), grid::TariffTier::kPeak);

  b.advance_to(sim::TimePoint::epoch() + sim::minutes(30));
  const fleet::PremiseResult r = b.finish();
  EXPECT_EQ(r.network.grid_signals_applied, 0u);
  EXPECT_EQ(r.network.grid_signals_misrouted, 0u)
      << "dropped, not misrouted: the old head end no longer owns us";
}

TEST(AssignTiers, AllFullFastPathDrawsNoRng) {
  const FidelityPolicy policy;  // full_fraction = 1.0
  const std::vector<std::size_t> feeders = {0, 1, 0, 1, 0};
  const auto tiers = assign_tiers(policy, 42, feeders, 2);
  EXPECT_TRUE(std::all_of(tiers.begin(), tiers.end(), [](FidelityTier t) {
    return t == FidelityTier::kFull;
  }));
}

TEST(AssignTiers, SystematicSamplingHitsFractionPerFeeder) {
  FidelityPolicy policy;
  policy.full_fraction = 0.25;
  policy.min_full_per_feeder = 0;
  policy.surrogate = FidelityTier::kDevice;
  const std::size_t kPremises = 400, kFeeders = 4;
  std::vector<std::size_t> feeders(kPremises);
  for (std::size_t i = 0; i < kPremises; ++i) feeders[i] = i % kFeeders;

  const auto tiers = assign_tiers(policy, 9, feeders, kFeeders);
  ASSERT_EQ(tiers.size(), kPremises);
  for (std::size_t k = 0; k < kFeeders; ++k) {
    std::size_t full = 0, members = 0;
    for (std::size_t i = 0; i < kPremises; ++i) {
      if (feeders[i] != k) continue;
      ++members;
      if (tiers[i] == FidelityTier::kFull) ++full;
    }
    // Systematic sampling is exact to within one premise per feeder.
    const double want = policy.full_fraction * static_cast<double>(members);
    EXPECT_NEAR(static_cast<double>(full), want, 1.0) << "feeder " << k;
  }
  // Deterministic in (seed, feeders, policy).
  EXPECT_EQ(assign_tiers(policy, 9, feeders, kFeeders), tiers);
}

TEST(AssignTiers, MinFullPerFeederPromotesLowestRanks) {
  FidelityPolicy policy;
  policy.full_fraction = 0.0;
  policy.min_full_per_feeder = 2;
  const std::vector<std::size_t> feeders = {0, 0, 0, 0, 1, 1, 1, 2};
  const auto tiers = assign_tiers(policy, 5, feeders, 3);
  // Feeder 0: first two members full; feeder 1: first two; feeder 2 has
  // one member — the floor is capped at the feeder size.
  const std::vector<FidelityTier> want = {
      FidelityTier::kFull,        FidelityTier::kFull,
      FidelityTier::kStatistical, FidelityTier::kStatistical,
      FidelityTier::kFull,        FidelityTier::kFull,
      FidelityTier::kStatistical, FidelityTier::kFull};
  EXPECT_EQ(tiers, want);
}

TEST(PolicyFromFlag, ParsesTheFourShapes) {
  const auto full = policy_from_flag("full");
  ASSERT_TRUE(full.has_value());
  EXPECT_TRUE(full->all_full());

  const auto device = policy_from_flag("device");
  ASSERT_TRUE(device.has_value());
  EXPECT_EQ(device->surrogate, FidelityTier::kDevice);
  EXPECT_DOUBLE_EQ(device->full_fraction, 0.0);
  EXPECT_EQ(device->min_full_per_feeder, 0u);

  const auto stat = policy_from_flag("stat");
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->surrogate, FidelityTier::kStatistical);
  EXPECT_FALSE(stat->all_full());

  const auto mixed = policy_from_flag("mixed:0.25");
  ASSERT_TRUE(mixed.has_value());
  EXPECT_DOUBLE_EQ(mixed->full_fraction, 0.25);
  EXPECT_EQ(mixed->surrogate, FidelityTier::kStatistical);
  EXPECT_EQ(mixed->min_full_per_feeder, 1u);

  EXPECT_FALSE(policy_from_flag("").has_value());
  EXPECT_FALSE(policy_from_flag("fulll").has_value());
  EXPECT_FALSE(policy_from_flag("mixed:").has_value());
  EXPECT_FALSE(policy_from_flag("mixed:1.5").has_value());
  EXPECT_FALSE(policy_from_flag("mixed:-0.1").has_value());
  EXPECT_FALSE(policy_from_flag("mixed:abc").has_value());
  EXPECT_FALSE(policy_from_flag("mixed:0.5x").has_value());
}

TEST(PolicyToString, SummarizesForBanners) {
  EXPECT_EQ(to_string(FidelityPolicy{}), "full");
  EXPECT_EQ(to_string(*policy_from_flag("device")), "device");
  EXPECT_EQ(to_string(*policy_from_flag("stat")), "stat");
  EXPECT_EQ(to_string(*policy_from_flag("mixed:0.1")),
            "mixed:0.10 (full+stat)");
}

}  // namespace
}  // namespace han::fidelity
