// Calibration harness for the cheap premise tiers.
//
// Three layers of guarantees:
//   * CalibrationTable persistence is versioned and rejects anything it
//     cannot faithfully read (no silent misparse of an old table);
//   * Calibrator::fit recovers known gain/shape structure from
//     synthetic data, and the exact offline workflow that produced the
//     shipped defaults() reproduces them (so the committed table can
//     always be regenerated);
//   * tolerance pins — each cheap tier's feeder-level aggregate is held
//     within a stated, per-preset energy tolerance of the full model.
//     These numbers are the subsystem's accuracy contract; widening one
//     is an API change and should be deliberate.
#include <gtest/gtest.h>

#include <iostream>
#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "fidelity/calibration.hpp"
#include "fidelity/statistical_backend.hpp"
#include "fleet/engine.hpp"
#include "fleet/scenario.hpp"
#include "metrics/divergence.hpp"

namespace han::fidelity {
namespace {

TEST(CalibrationTable, CsvRoundTrip) {
  CalibrationTable t = CalibrationTable::defaults();
  t.duty_gain = 0.87;
  t.hourly_shape[5] = 1.25;
  t.shed_compliance = 0.9;
  t.rebound_fraction = 0.5;
  t.rebound_tau = sim::minutes(45);
  t.tariff_elasticity = 0.3;

  std::stringstream ss;
  t.save_csv(ss);
  const auto back = CalibrationTable::load_csv(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(CalibrationTable, LoadRejectsVersionMismatch) {
  CalibrationTable t;
  std::stringstream ss;
  t.save_csv(ss);
  std::string csv = ss.str();
  const std::string from = "version," + std::to_string(t.version);
  csv.replace(csv.find(from), from.size(), "version,999");
  std::stringstream bumped(csv);
  EXPECT_FALSE(CalibrationTable::load_csv(bumped).has_value());
}

TEST(CalibrationTable, LoadRejectsMalformedTables) {
  std::stringstream missing_version("key,value\nduty_gain,0.9\n");
  EXPECT_FALSE(CalibrationTable::load_csv(missing_version).has_value());
  std::stringstream unknown_key("key,value\nversion,1\nfrobnicate,2\n");
  EXPECT_FALSE(CalibrationTable::load_csv(unknown_key).has_value());
  std::stringstream bad_value("key,value\nversion,1\nduty_gain,spam\n");
  EXPECT_FALSE(CalibrationTable::load_csv(bad_value).has_value());
  std::stringstream empty("");
  EXPECT_FALSE(CalibrationTable::load_csv(empty).has_value());
}

TEST(CalibrationTable, LoadRejectsNonFiniteValues) {
  // std::stod parses "nan"/"inf" happily; the loader must not let them
  // through into surrogate arithmetic. (Regression: it used to.)
  for (const char* bad : {"nan", "NaN", "-nan", "inf", "-inf", "INF"}) {
    std::stringstream ss(std::string("key,value\nversion,1\nduty_gain,") +
                         bad + "\n");
    std::string error;
    EXPECT_FALSE(CalibrationTable::load_csv(ss, &error).has_value()) << bad;
    EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
    EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  }
}

TEST(CalibrationTable, LoadRejectsPartiallyNumericValues) {
  // std::stod accepts a numeric prefix; "1.5abc" must not silently load
  // as 1.5. (Regression: it used to.)
  std::stringstream ss("key,value\nversion,1\nshed_compliance,1.5abc\n");
  std::string error;
  EXPECT_FALSE(CalibrationTable::load_csv(ss, &error).has_value());
  EXPECT_NE(error.find("trailing garbage"), std::string::npos) << error;
}

TEST(CalibrationTable, LoadRejectsBadHourlyShapeIndex) {
  // A non-numeric shape index used to escape as an uncaught
  // std::invalid_argument out of std::stoul instead of a clean reject.
  std::stringstream alpha("key,value\nversion,1\nhourly_shape_abc,1.0\n");
  std::string error;
  EXPECT_FALSE(CalibrationTable::load_csv(alpha, &error).has_value());
  EXPECT_NE(error.find("hourly_shape index"), std::string::npos) << error;
  std::stringstream mixed("key,value\nversion,1\nhourly_shape_3x,1.0\n");
  EXPECT_FALSE(CalibrationTable::load_csv(mixed, &error).has_value());
  std::stringstream range("key,value\nversion,1\nhourly_shape_24,1.0\n");
  EXPECT_FALSE(CalibrationTable::load_csv(range, &error).has_value());
  EXPECT_NE(error.find("out of range"), std::string::npos) << error;
}

TEST(CalibrationTable, LoadErrorNamesTheOffendingLine) {
  std::stringstream ss("key,value\nversion,1\nno comma here\n");
  std::string error;
  EXPECT_FALSE(CalibrationTable::load_csv(ss, &error).has_value());
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("no comma"), std::string::npos) << error;
}

TEST(Calibrator, RecoversSyntheticGainAndShape) {
  // observed = 0.8 * predicted everywhere except hour 2, where the
  // observation doubles. The fit must put the global 0.8 into the gain
  // and the hour-2 structure into the shape.
  metrics::TimeSeries obs(sim::TimePoint::epoch(), sim::minutes(30));
  metrics::TimeSeries pred(sim::TimePoint::epoch(), sim::minutes(30));
  for (std::size_t i = 0; i < 48; ++i) {  // 24 h at 30-min samples
    const std::size_t hour = i / 2;
    pred.append(1.0);
    obs.append(0.8 * (hour == 2 ? 2.0 : 1.0));
  }
  Calibrator cal;
  cal.add(obs, pred);
  EXPECT_EQ(cal.samples(), 1u);
  const CalibrationTable fit = cal.fit();
  // Per-hour product gain * shape[h] must equal the observed ratio.
  for (std::size_t h = 0; h < 24; ++h) {
    const double want = 0.8 * (h == 2 ? 2.0 : 1.0);
    EXPECT_NEAR(fit.duty_gain * fit.hourly_shape[h], want, 1e-12) << h;
  }
}

TEST(Calibrator, EmptyFitIsUnit) {
  const CalibrationTable fit = Calibrator{}.fit();
  EXPECT_DOUBLE_EQ(fit.duty_gain, 1.0);
  for (const double s : fit.hourly_shape) EXPECT_DOUBLE_EQ(s, 1.0);
}

/// The offline workflow that produced CalibrationTable::defaults():
/// full-fidelity Type-2 series of the scale_sweep population paired
/// with the unit-table surrogate prediction for the same specs.
CalibrationTable fit_scale_sweep(std::size_t premises, std::uint64_t seed) {
  const fleet::FleetConfig cfg =
      fleet::make_scenario(fleet::ScenarioKind::kScaleSweep, premises, seed);
  const fleet::FleetEngine engine(cfg);
  Calibrator cal;
  for (std::size_t i = 0; i < premises; ++i) {
    const fleet::PremiseSpec spec = engine.make_spec(i);
    const core::ExperimentResult full =
        core::run_experiment(spec.experiment, spec.trace);
    StatisticalBackend raw(spec, CalibrationTable{});  // unit table
    raw.advance_to(sim::TimePoint::epoch() + cfg.horizon);
    cal.add(full.load, raw.type2_series());
  }
  return cal.fit();
}

TEST(Calibrator, FitWorkflowReproducesShippedGain) {
  const CalibrationTable fitted = fit_scale_sweep(48, 1);
  EXPECT_NEAR(fitted.duty_gain, CalibrationTable::defaults().duty_gain, 0.02)
      << "refit the shipped table: fitted duty_gain drifted to "
      << fitted.duty_gain;
  // scale_sweep's Poisson background has no diurnal structure, which is
  // why the shipped shape is flat: the per-hour corrections are noise
  // around 1 over the 6 h horizon.
  for (std::size_t h = 0; h < 6; ++h) {
    EXPECT_NEAR(fitted.hourly_shape[h], 1.0, 0.15) << h;
  }
}

// --- Per-preset tier tolerance pins ----------------------------------
//
// The accuracy contract: open-loop feeder-level aggregate energy of a
// whole fleet run at a cheap tier, against the same fleet at full
// fidelity. The pinned bound is what README documents.

struct TolerancePin {
  fleet::ScenarioKind kind;
  const char* name;
  FidelityTier tier;
  double energy_tol;  // relative feeder-energy error bound
};

double tier_energy_rel_err(fleet::ScenarioKind kind, FidelityTier tier,
                           std::size_t premises, std::uint64_t seed) {
  fleet::FleetConfig cfg = fleet::make_scenario(kind, premises, seed);
  const fleet::FleetResult full = fleet::FleetEngine(cfg).run(2);
  cfg.fidelity.full_fraction = 0.0;
  cfg.fidelity.min_full_per_feeder = 0;
  cfg.fidelity.surrogate = tier;
  const fleet::FleetResult cheap = fleet::FleetEngine(cfg).run(2);
  return metrics::divergence(full.feeder_load, cheap.feeder_load)
      .energy_rel_err;
}

TEST(TierTolerance, FeederEnergyPinnedPerPreset) {
  // Measured on this harness (24 premises, seed 1): device 0.71% /
  // 0.09%, statistical 0.47% / 0.42% (scale_sweep / evening_peak).
  // Pins carry 2-4x headroom but fail on regression.
  const TolerancePin pins[] = {
      {fleet::ScenarioKind::kScaleSweep, "scale_sweep",
       FidelityTier::kDevice, 0.02},
      {fleet::ScenarioKind::kScaleSweep, "scale_sweep",
       FidelityTier::kStatistical, 0.02},
      {fleet::ScenarioKind::kEveningPeak, "evening_peak",
       FidelityTier::kDevice, 0.01},
      {fleet::ScenarioKind::kEveningPeak, "evening_peak",
       FidelityTier::kStatistical, 0.02},
  };
  for (const TolerancePin& pin : pins) {
    const double err = tier_energy_rel_err(pin.kind, pin.tier, 24, 1);
    std::cout << "[divergence] " << pin.name << " @ " << to_string(pin.tier)
              << ": feeder energy rel err " << err << " (tol "
              << pin.energy_tol << ")\n";
    EXPECT_LE(err, pin.energy_tol)
        << pin.name << " @ " << to_string(pin.tier)
        << ": feeder energy error " << err;
  }
}

}  // namespace
}  // namespace han::fidelity
