#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit using the
# compile_commands.json CMake exports.
#
#   ci/run_clang_tidy.sh [BUILD_DIR]      (default: build)
#
# The rule set lives in .clang-tidy at the repo root; every warning is
# an error there, so this script's exit status is the gate. Exits 3
# with a hint when clang-tidy is not installed (the container image may
# not carry it — the CI clang-tidy job installs it on the runner).
set -eu

BUILD_DIR=${1:-build}
cd "$(dirname "$0")/.."

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "error: $TIDY not found on PATH." >&2
  echo "       install clang-tidy (apt-get install clang-tidy) or set" >&2
  echo "       CLANG_TIDY to a versioned binary (e.g. clang-tidy-18)." >&2
  exit 3
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "error: $BUILD_DIR/compile_commands.json missing — configure" >&2
  echo "       first: cmake -B $BUILD_DIR -S ." >&2
  exit 3
fi

# Tidy only TUs that are in the compilation database: bench/ targets are
# skipped when google-benchmark was absent at configure time.
mapfile -t FILES < <(
  find src bench examples -name '*.cpp' |
    while read -r f; do
      grep -q "\"$(pwd)/$f\"" "$BUILD_DIR/compile_commands.json" && echo "$f"
    done
)
if [ "${#FILES[@]}" -eq 0 ]; then
  echo "error: no translation units matched the compilation database" >&2
  exit 3
fi

echo "clang-tidy ($("$TIDY" --version | head -n1)) over ${#FILES[@]} TUs"
printf '%s\n' "${FILES[@]}" |
  xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet
echo "clang-tidy: clean"
