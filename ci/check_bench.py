#!/usr/bin/env python3
"""Perf-trajectory gate for the committed bench/telemetry snapshots.

Two modes:

  check_bench.py SNAPSHOT FRESH [--require SECTION ...]
      Compare a bench JSON report (bench_grid --json / bench_fleet
      --json) against the committed snapshot. The report is a flat
      {section: {key: number}} object. Sections and keys must match
      exactly. Deterministic keys (simulation counters: barriers,
      sheds, peaks, transfer counts, ...) FAIL on any drift beyond
      floating-point noise -- a change there is a behavior change that
      must be re-pinned deliberately by regenerating the snapshot.
      Timing keys (substring "wall" or "per_sec") only WARN beyond
      +/-25%: wall clock is advisory, but a big swing deserves a look.
      Each --require SECTION must be present in BOTH files (substring
      match against section names), or the check fails: the gate's way
      of proving a counter family (e.g. the per-shard join_wait
      sections) didn't silently drop out of the report.

  check_bench.py --manifest A B
      Compare two telemetry run manifests (--telemetry=out.json): the
      "counters" sections must be byte-equal -- the determinism
      contract across executor widths and control-plane refactors.
      Everything else in the manifest (run metadata, phase timings,
      executor activity) is machine-dependent and ignored.

Exit status: 0 clean (warnings allowed), 1 on any failure.
"""

import json
import sys

REL_TOL = 1e-6        # deterministic keys: fp formatting noise only
TIMING_REL_TOL = 0.25  # timing keys: warn-only band


def is_timing_key(key):
    return "wall" in key or "per_sec" in key


def rel_delta(a, b):
    denom = max(abs(a), abs(b))
    if denom == 0.0:
        return 0.0
    return abs(a - b) / denom


def check_bench(snapshot_path, fresh_path, required_sections=()):
    with open(snapshot_path) as f:
        snapshot = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    failures = []
    warnings = []

    for required in required_sections:
        for path, report in ((snapshot_path, snapshot), (fresh_path, fresh)):
            if not any(required in section for section in report):
                failures.append(
                    "%s: no section matching required %r" % (path, required))

    missing = sorted(set(snapshot) - set(fresh))
    added = sorted(set(fresh) - set(snapshot))
    if missing:
        failures.append("sections missing from fresh report: %s" % missing)
    if added:
        failures.append(
            "new sections not in snapshot (regenerate it): %s" % added)

    for section in sorted(set(snapshot) & set(fresh)):
        snap_keys, fresh_keys = set(snapshot[section]), set(fresh[section])
        if snap_keys != fresh_keys:
            failures.append(
                "section %r keys differ: missing %s, new %s"
                % (section, sorted(snap_keys - fresh_keys),
                   sorted(fresh_keys - snap_keys)))
            continue
        for key in sorted(snap_keys):
            want, got = snapshot[section][key], fresh[section][key]
            delta = rel_delta(float(want), float(got))
            where = "%s.%s: snapshot %s, fresh %s (rel %.3g)" % (
                section, key, want, got, delta)
            if is_timing_key(key):
                if delta > TIMING_REL_TOL:
                    warnings.append(where)
            elif delta > REL_TOL:
                failures.append(where)

    for w in warnings:
        print("WARN (timing drift): %s" % w)
    for f in failures:
        print("FAIL: %s" % f)
    if failures:
        print("\n%d failure(s) against %s -- deterministic metrics moved."
              % (len(failures), snapshot_path))
        print("If the change is intentional, regenerate the snapshot "
              "(see ci/README or the workflow's gate step) and commit it.")
        return 1
    print("OK: %s matches %s (%d warning(s))"
          % (fresh_path, snapshot_path, len(warnings)))
    return 0


def check_manifest(a_path, b_path):
    with open(a_path) as f:
        a = json.load(f)
    with open(b_path) as f:
        b = json.load(f)
    for path, manifest in ((a_path, a), (b_path, b)):
        if manifest.get("telemetry_version") != 1:
            print("FAIL: %s: unsupported telemetry_version %r"
                  % (path, manifest.get("telemetry_version")))
            return 1
        if "counters" not in manifest:
            print("FAIL: %s: no counters section" % path)
            return 1

    ca, cb = a["counters"], b["counters"]
    failures = []
    if list(ca) != list(cb):
        failures.append("counter key order differs: %s vs %s"
                        % (list(ca), list(cb)))
    for key in ca:
        if key in cb and ca[key] != cb[key]:
            failures.append("counter %r: %s vs %s" % (key, ca[key], cb[key]))
    for f in failures:
        print("FAIL: %s" % f)
    if failures:
        print("\ndeterministic counters differ between %s and %s"
              % (a_path, b_path))
        return 1
    print("OK: deterministic counters identical (%d counters)" % len(ca))
    return 0


def main(argv):
    if len(argv) == 4 and argv[1] == "--manifest":
        return check_manifest(argv[2], argv[3])
    args = argv[1:]
    required = []
    while "--require" in args:
        at = args.index("--require")
        if at + 1 >= len(args):
            print("--require needs a section name")
            return 2
        required.append(args[at + 1])
        del args[at:at + 2]
    if len(args) == 2:
        return check_bench(args[0], args[1], required)
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
